//===- support/BigInt.h - Arbitrary-precision integers ---------*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integers. This is the substrate underneath the
/// exact rational arithmetic used by the LP solver (the paper uses SoPlex,
/// which uses GMP) and by the multiple-precision floating point library (the
/// paper uses MPFR). Magnitudes are stored as base-2^32 limbs, least
/// significant first; the sign is kept separately so the magnitude algorithms
/// stay branch-free with respect to sign.
///
//===----------------------------------------------------------------------===//

#ifndef RFP_SUPPORT_BIGINT_H
#define RFP_SUPPORT_BIGINT_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace rfp {

/// Arbitrary-precision signed integer.
///
/// Value = Sign * sum(Limbs[i] * 2^(32*i)). Zero is canonically represented
/// with an empty limb vector and Sign == +1. All arithmetic is exact.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a machine integer (exact).
  BigInt(int64_t V);
  BigInt(uint64_t V, bool /*UnsignedTag*/);

  /// Parses a base-10 literal with optional leading '-'. Asserts on
  /// malformed input (this is an internal library, not a user parser).
  static BigInt fromDecimal(const std::string &S);

  /// Returns 2^K (K >= 0).
  static BigInt pow2(unsigned K);

  bool isZero() const { return Limbs.empty(); }
  bool isNegative() const { return Negative; }
  bool isOne() const { return !Negative && Limbs.size() == 1 && Limbs[0] == 1; }

  /// Returns true iff the value fits in int64_t.
  bool fitsInt64() const;

  /// Converts to int64_t; asserts that the value fits.
  int64_t toInt64() const;

  /// Low 64 bits of the magnitude; asserts the magnitude fits in 64 bits
  /// and the value is non-negative.
  uint64_t toUint64() const;

  /// Converts to double with round-to-nearest-even. Returns +-inf on
  /// overflow. The conversion is correctly rounded.
  double toDouble() const;

  /// Number of significant bits in the magnitude (0 for zero).
  unsigned bitLength() const;

  /// Value of bit I (I = 0 is the least significant bit of the magnitude).
  bool testBit(unsigned I) const;

  /// True iff the magnitude has any set bit strictly below bit I.
  /// Used as an exact "sticky" test when truncating I low bits.
  bool anyBitBelow(unsigned I) const;

  /// Number of trailing zero bits of the magnitude (0 for zero).
  unsigned countTrailingZeros() const;

  /// Three-way comparison: -1, 0, or +1.
  int compare(const BigInt &RHS) const;
  /// Magnitude-only three-way comparison.
  int compareMagnitude(const BigInt &RHS) const;

  BigInt operator-() const;
  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;
  /// Truncating division (C semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder paired with operator/ (sign follows the dividend).
  BigInt operator%(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }

  /// Computes quotient and remainder in one pass (Knuth Algorithm D).
  static void divMod(const BigInt &A, const BigInt &B, BigInt &Q, BigInt &R);

  /// Logical shift of the magnitude; sign is preserved.
  BigInt shl(unsigned K) const;
  BigInt shr(unsigned K) const;

  bool operator==(const BigInt &RHS) const { return compare(RHS) == 0; }
  bool operator!=(const BigInt &RHS) const { return compare(RHS) != 0; }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  /// Greatest common divisor of the magnitudes (always non-negative).
  static BigInt gcd(BigInt A, BigInt B);

  /// Base-10 rendering with leading '-' when negative.
  std::string toDecimal() const;
  /// Base-16 rendering (magnitude, "0x" prefix, leading '-' when negative).
  std::string toHex() const;

private:
  /// Drops high zero limbs and canonicalizes the sign of zero.
  void trim();

  static int magCompare(const std::vector<uint32_t> &A,
                        const std::vector<uint32_t> &B);
  static std::vector<uint32_t> magAdd(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint32_t> magSub(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  static std::vector<uint32_t> magMul(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);

  std::vector<uint32_t> Limbs;
  bool Negative = false;
};

/// Rounds Mag * 2^BinExp to the nearest double (ties to even), where Mag is
/// a non-negative magnitude and Sticky records whether the true value has
/// additional non-zero weight strictly below 2^BinExp. Mag must carry at
/// least 55 significant bits whenever Sticky is set so the extra weight sits
/// strictly below the rounding position. Handles overflow (to +-inf) and
/// gradual underflow.
double roundScaledToDouble(const BigInt &Mag, int64_t BinExp, bool Sticky,
                           bool Negative);

} // namespace rfp

#endif // RFP_SUPPORT_BIGINT_H
