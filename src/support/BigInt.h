//===- support/BigInt.h - Arbitrary-precision integers ---------*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integers. This is the substrate underneath the
/// exact rational arithmetic used by the LP solver (the paper uses SoPlex,
/// which uses GMP) and by the multiple-precision floating point library (the
/// paper uses MPFR). Magnitudes are stored as base-2^32 limbs, least
/// significant first; the sign is kept separately so the magnitude algorithms
/// stay branch-free with respect to sign.
///
/// Performance model (see DESIGN.md, "Exact-arithmetic substrate"): limb
/// storage is a small-buffer vector with inline capacity for 4 limbs (128
/// bits of magnitude), so the dominant small-operand path -- interval
/// endpoints, LP columns, pivot scalars -- never touches the heap.
/// Multiplication switches from schoolbook to Karatsuba above a tuned limb
/// threshold.
///
//===----------------------------------------------------------------------===//

#ifndef RFP_SUPPORT_BIGINT_H
#define RFP_SUPPORT_BIGINT_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>

namespace rfp {

/// Small-buffer limb vector: the first InlineCapacity limbs live inside the
/// object (no allocation); larger magnitudes spill to the heap. The API is
/// the subset of std::vector<uint32_t> the BigInt algorithms use. Capacity
/// never shrinks, so repeated resize/assign cycles on a heap-backed value
/// (the long-division work buffers) do not reallocate.
class LimbVec {
public:
  /// 4 limbs = 128-bit magnitudes inline. Rounding intervals, integerized
  /// LP columns, and most pivot scalars fit; the basis-inverse numerators
  /// in deep pivots are the main heap clients.
  static constexpr uint32_t InlineCapacity = 4;

  LimbVec() = default;
  LimbVec(const LimbVec &O) { assignRaw(O.data(), O.Sz); }
  LimbVec(LimbVec &&O) noexcept { moveFrom(O); }
  LimbVec &operator=(const LimbVec &O) {
    if (this != &O)
      assignRaw(O.data(), O.Sz);
    return *this;
  }
  LimbVec &operator=(LimbVec &&O) noexcept {
    if (this != &O) {
      release();
      moveFrom(O);
    }
    return *this;
  }
  ~LimbVec() { release(); }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }
  bool isInline() const { return Cap == InlineCapacity; }

  uint32_t *data() { return isInline() ? Inline : Heap; }
  const uint32_t *data() const { return isInline() ? Inline : Heap; }
  uint32_t &operator[](size_t I) { return data()[I]; }
  uint32_t operator[](size_t I) const { return data()[I]; }
  uint32_t &back() { return data()[Sz - 1]; }
  uint32_t back() const { return data()[Sz - 1]; }

  void clear() { Sz = 0; }
  void pop_back() { --Sz; }
  void push_back(uint32_t V) {
    if (Sz == Cap)
      grow(Sz + 1, /*PreserveContents=*/true);
    data()[Sz++] = V;
  }

  /// std::vector semantics: new slots (when growing) are zero-filled.
  void resize(size_t N) {
    if (N > Cap)
      grow(N, /*PreserveContents=*/true);
    uint32_t *D = data();
    for (size_t I = Sz; I < N; ++I)
      D[I] = 0;
    Sz = static_cast<uint32_t>(N);
  }

  void assign(size_t N, uint32_t V) {
    if (N > Cap)
      grow(N, /*PreserveContents=*/false);
    uint32_t *D = data();
    for (size_t I = 0; I < N; ++I)
      D[I] = V;
    Sz = static_cast<uint32_t>(N);
  }

private:
  void assignRaw(const uint32_t *Src, uint32_t N) {
    if (N > Cap)
      grow(N, /*PreserveContents=*/false);
    std::memcpy(data(), Src, N * sizeof(uint32_t));
    Sz = N;
  }

  void moveFrom(LimbVec &O) {
    if (O.isInline()) {
      std::memcpy(Inline, O.Inline, O.Sz * sizeof(uint32_t));
      Cap = InlineCapacity;
    } else {
      Heap = O.Heap;
      Cap = O.Cap;
      O.Cap = InlineCapacity;
    }
    Sz = O.Sz;
    O.Sz = 0;
  }

  void release() {
    if (!isInline())
      delete[] Heap;
  }

  void grow(size_t MinCap, bool PreserveContents) {
    size_t NewCap = Cap * 2 > MinCap ? Cap * 2 : MinCap;
    uint32_t *NewHeap = new uint32_t[NewCap];
    if (PreserveContents && Sz)
      std::memcpy(NewHeap, data(), Sz * sizeof(uint32_t));
    release();
    Heap = NewHeap;
    Cap = static_cast<uint32_t>(NewCap);
  }

  uint32_t Sz = 0;
  uint32_t Cap = InlineCapacity;
  union {
    uint32_t Inline[InlineCapacity] = {};
    uint32_t *Heap;
  };
};

/// Arbitrary-precision signed integer.
///
/// Value = Sign * sum(Limbs[i] * 2^(32*i)). Zero is canonically represented
/// with an empty limb vector and Sign == +1. All arithmetic is exact.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a machine integer (exact).
  BigInt(int64_t V);
  BigInt(uint64_t V, bool /*UnsignedTag*/);

  /// Parses a base-10 literal with optional leading '-'. Asserts on
  /// malformed input (this is an internal library, not a user parser).
  static BigInt fromDecimal(const std::string &S);

  /// Returns 2^K (K >= 0).
  static BigInt pow2(unsigned K);

  bool isZero() const { return Limbs.empty(); }
  bool isNegative() const { return Negative; }
  bool isOne() const { return !Negative && Limbs.size() == 1 && Limbs[0] == 1; }

  /// Returns true iff the value fits in int64_t.
  bool fitsInt64() const;

  /// Converts to int64_t; asserts that the value fits.
  int64_t toInt64() const;

  /// Low 64 bits of the magnitude; asserts the magnitude fits in 64 bits
  /// and the value is non-negative.
  uint64_t toUint64() const;

  /// Converts to double with round-to-nearest-even. Returns +-inf on
  /// overflow. The conversion is correctly rounded.
  double toDouble() const;

  /// Number of significant bits in the magnitude (0 for zero).
  unsigned bitLength() const;

  /// Value of bit I (I = 0 is the least significant bit of the magnitude).
  bool testBit(unsigned I) const;

  /// True iff the magnitude has any set bit strictly below bit I.
  /// Used as an exact "sticky" test when truncating I low bits.
  bool anyBitBelow(unsigned I) const;

  /// Number of trailing zero bits of the magnitude (0 for zero).
  unsigned countTrailingZeros() const;

  /// Three-way comparison: -1, 0, or +1.
  int compare(const BigInt &RHS) const;
  /// Magnitude-only three-way comparison.
  int compareMagnitude(const BigInt &RHS) const;

  BigInt operator-() const;
  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;
  /// Truncating division (C semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder paired with operator/ (sign follows the dividend).
  BigInt operator%(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }

  /// Computes quotient and remainder in one pass (Knuth Algorithm D).
  static void divMod(const BigInt &A, const BigInt &B, BigInt &Q, BigInt &R);

  /// Limb count at and above which operator* switches from schoolbook to
  /// Karatsuba (both operands must reach it). Tuned with bench_bigint's
  /// mul ladder; see EXPERIMENTS.md.
  static constexpr size_t KaratsubaThreshold = 64;

  /// Schoolbook multiplication regardless of operand size. Exposed for the
  /// Karatsuba differential tests and the threshold-bracketing benchmark;
  /// use operator* everywhere else.
  static BigInt mulSchoolbook(const BigInt &A, const BigInt &B);

  /// Logical shift of the magnitude; sign is preserved.
  BigInt shl(unsigned K) const;
  BigInt shr(unsigned K) const;

  bool operator==(const BigInt &RHS) const { return compare(RHS) == 0; }
  bool operator!=(const BigInt &RHS) const { return compare(RHS) != 0; }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  /// Greatest common divisor of the magnitudes (always non-negative).
  static BigInt gcd(BigInt A, BigInt B);

  /// Base-10 rendering with leading '-' when negative.
  /// Signed frexp-style approximation: returns a mantissa Mant with
  /// 0.5 <= |Mant| < 1 and sets Exp such that the value is approximately
  /// Mant * 2^Exp (relative error < 3 * 2^-52, from truncating to the top
  /// ~96 bits). Returns 0 with Exp = 0 for zero. O(1): reads the top
  /// limbs only -- unlike toDouble(), never overflows for huge values.
  double frexpApprox(int64_t &Exp) const;

  /// Long-double variant of frexpApprox: same contract, but the mantissa
  /// keeps the full 64 bits an x87 long double carries (relative error
  /// < 3 * 2^-63 from truncating to the top ~96 bits). The float LP
  /// presolver uses this -- the final simplex pivots contend over cost
  /// differences below double resolution, and the extra 11 bits decide
  /// them the way the exact arithmetic does.
  long double frexpApproxL(int64_t &Exp) const;

  /// 64-bit FNV-1a hash of the sign and canonical limb representation.
  /// Equal values hash equally; intended for hash-map keys with an exact
  /// equality check on collision.
  uint64_t hash() const;

  std::string toDecimal() const;
  /// Base-16 rendering (magnitude, "0x" prefix, leading '-' when negative).
  std::string toHex() const;

private:
  /// Drops high zero limbs and canonicalizes the sign of zero.
  void trim();

  static int magCompare(const LimbVec &A, const LimbVec &B);
  static LimbVec magAdd(const LimbVec &A, const LimbVec &B);
  /// Requires |A| >= |B|.
  static LimbVec magSub(const LimbVec &A, const LimbVec &B);
  static LimbVec magMul(const LimbVec &A, const LimbVec &B);
  static LimbVec magMulSchoolbook(const LimbVec &A, const LimbVec &B);
  static LimbVec magMulKaratsuba(const LimbVec &A, const LimbVec &B);

  LimbVec Limbs;
  bool Negative = false;
};

/// Rounds Mag * 2^BinExp to the nearest double (ties to even), where Mag is
/// a non-negative magnitude and Sticky records whether the true value has
/// additional non-zero weight strictly below 2^BinExp. Mag must carry at
/// least 55 significant bits whenever Sticky is set so the extra weight sits
/// strictly below the rounding position. Handles overflow (to +-inf) and
/// gradual underflow.
double roundScaledToDouble(const BigInt &Mag, int64_t BinExp, bool Sticky,
                           bool Negative);

} // namespace rfp

#endif // RFP_SUPPORT_BIGINT_H
