//===- support/Telemetry.h - Metrics, spans, structured logging -*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide observability facade: a metrics registry (named
/// monotonic counters and histograms), scoped span timers that stream
/// Chrome `trace_event`-format JSON, and a leveled structured logger.
/// Every layer of the pipeline reports through this one API; see the
/// DESIGN.md "Observability" section for the design rationale and the
/// overhead budget.
///
/// Metrics. `counter(Name)` / `histogram(Name)` return small copyable
/// handles (register once in a function-local static, then use freely).
/// Updates land in per-thread shards -- a plain relaxed store into cells
/// owned by the updating thread -- so hot paths never contend on a shared
/// cache line. `snapshotMetrics()` merges the shards (plus the totals of
/// already-exited threads) under the registry lock. Counters are
/// monotonic; consumers that need interval numbers take before/after
/// snapshots and subtract.
///
/// Tracing. `Span` is an RAII timer: construction stamps the start,
/// destruction emits one Chrome `"ph":"X"` complete event. When tracing
/// is disabled (the default) a Span costs one relaxed atomic load and no
/// clock reads. Enable by setting `RFP_TRACE=<path>` in the environment,
/// calling `startTrace(Path)`, or setting `GenConfig::TracePath`. The
/// resulting file loads in chrome://tracing and Perfetto, and
/// `python3 -m json.tool` accepts it (CI validates exactly that).
///
/// Logging. Leveled (error < warn < info < debug < trace), default level
/// `warn` so default builds are silent; override with `RFP_LOG_LEVEL` or
/// `setLogLevel()`. Messages route to registered sinks, or to a stderr
/// formatter when no sink is registered. This replaces both the old
/// always-on `[dbg]` fprintf calls and the `PolyGenerator::LogFn`
/// callback (a deprecated shim remains for one release).
///
//===----------------------------------------------------------------------===//

#ifndef RFP_SUPPORT_TELEMETRY_H
#define RFP_SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace rfp {
namespace telemetry {

//===----------------------------------------------------------------------===//
// Leveled structured logging
//===----------------------------------------------------------------------===//

enum class LogLevel : int {
  Off = 0,
  Error = 1,
  Warn = 2,
  Info = 3,
  Debug = 4,
  Trace = 5,
};

/// Lower-case level name ("warn", "debug", ...).
const char *logLevelName(LogLevel L);

/// Current threshold. Initialized from RFP_LOG_LEVEL (name or integer) on
/// first use; defaults to Warn.
LogLevel logLevel();
void setLogLevel(LogLevel L);

/// True when a message at \p L would be emitted. Cheap (one relaxed
/// atomic load); guard call sites whose argument formatting is not free.
bool logEnabled(LogLevel L);

/// Emits \p Msg attributed to \p Component ("polygen", "simplex", ...).
/// No-op when the level is filtered. Thread-safe; messages from
/// concurrent threads are serialized, never interleaved.
void log(LogLevel L, const char *Component, const std::string &Msg);

/// printf-style convenience over log(). Formats only when enabled.
void logf(LogLevel L, const char *Component, const char *Fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

/// Sink receiving every non-filtered message. While at least one sink is
/// registered, the default stderr formatter is suppressed.
using LogSink =
    std::function<void(LogLevel, const char *Component, const std::string &)>;

/// Registers \p S; returns an id for removeLogSink.
int addLogSink(LogSink S);
void removeLogSink(int Id);

/// RAII sink registration (tools, tests, the LogFn compat shim).
class ScopedLogSink {
public:
  explicit ScopedLogSink(LogSink S) : Id(addLogSink(std::move(S))) {}
  ~ScopedLogSink() { removeLogSink(Id); }
  ScopedLogSink(const ScopedLogSink &) = delete;
  ScopedLogSink &operator=(const ScopedLogSink &) = delete;

private:
  int Id;
};

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

/// Handle to a named monotonic counter. Default-constructed handles are
/// inert (add() drops the update).
class Counter {
public:
  Counter() = default;
  /// Adds \p N to this thread's shard. Lock-free; never blocks.
  void add(uint64_t N = 1) const;
  void inc() const { add(1); }

private:
  friend Counter counter(const char *Name);
  explicit Counter(uint32_t Id) : Id(Id) {}
  uint32_t Id = UINT32_MAX;
};

/// Finds or registers the counter named \p Name. Takes the registry lock;
/// call once and keep the handle (function-local static is the idiom).
Counter counter(const char *Name);

/// Merged value of the counter named \p Name across all threads, live and
/// exited. 0 for unknown names.
uint64_t counterValue(const char *Name);

/// Handle to a named histogram (distribution of double-valued samples,
/// e.g. per-solve milliseconds). Same sharding discipline as Counter.
class Histogram {
public:
  Histogram() = default;
  void record(double Value) const;

private:
  friend Histogram histogram(const char *Name);
  explicit Histogram(uint32_t Id) : Id(Id) {}
  uint32_t Id = UINT32_MAX;
};

Histogram histogram(const char *Name);

/// Merged histogram statistics. Quantiles are upper-bound estimates from
/// power-of-two buckets (each sample is bucketed by binary exponent).
struct HistogramData {
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double P50 = 0.0;
  double P90 = 0.0;
  double P99 = 0.0;
  double avg() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }
};

HistogramData histogramValue(const char *Name);

/// Point-in-time merge of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, HistogramData>> Histograms;
};
MetricsSnapshot snapshotMetrics();

/// Zeroes every shard and the exited-thread totals (test isolation).
void resetMetrics();

/// Serializes snapshotMetrics() as a JSON document (the `--metrics-json`
/// payload shared by the tools and benches).
void writeMetricsJson(FILE *Out);
/// Convenience: writes to \p Path ("-" for stdout). Returns false when
/// the file cannot be opened.
bool writeMetricsJsonFile(const char *Path);

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

/// Opens \p Path and starts streaming Chrome trace events to it.
/// Idempotent while a trace is already active (the first path wins).
/// Returns false when the file cannot be opened. The stream is finalized
/// by stopTrace() or automatically at process exit.
bool startTrace(const char *Path);

/// Finalizes and closes the active trace stream (no-op when idle).
void stopTrace();

/// True when spans are being recorded. The first call consults RFP_TRACE;
/// afterwards this is one relaxed atomic load.
bool tracingEnabled();

/// Scoped span timer: emits one complete ("ph":"X") trace event covering
/// construction to destruction. Near-free when tracing is disabled.
class Span {
public:
  explicit Span(const char *Name);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name = nullptr; ///< Null when tracing was off at entry.
  uint64_t StartUs = 0;
};

} // namespace telemetry
} // namespace rfp

#endif // RFP_SUPPORT_TELEMETRY_H
