//===- support/ElemFunc.h - The six elementary functions -------*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifiers for the six elementary functions the paper evaluates
/// (Section 6.1): e^x, 2^x, 10^x, ln(x), log2(x), log10(x).
///
//===----------------------------------------------------------------------===//

#ifndef RFP_SUPPORT_ELEMFUNC_H
#define RFP_SUPPORT_ELEMFUNC_H

namespace rfp {

/// The elementary functions covered by the paper's prototype.
enum class ElemFunc { Exp, Exp2, Exp10, Log, Log2, Log10 };

inline constexpr ElemFunc AllElemFuncs[6] = {ElemFunc::Exp,  ElemFunc::Exp2,
                                             ElemFunc::Exp10, ElemFunc::Log,
                                             ElemFunc::Log2, ElemFunc::Log10};

/// Display name matching the paper's tables ("ex", "2x", ...).
inline const char *elemFuncName(ElemFunc F) {
  switch (F) {
  case ElemFunc::Exp:
    return "exp";
  case ElemFunc::Exp2:
    return "exp2";
  case ElemFunc::Exp10:
    return "exp10";
  case ElemFunc::Log:
    return "log";
  case ElemFunc::Log2:
    return "log2";
  case ElemFunc::Log10:
    return "log10";
  }
  return "??";
}

/// True for e^x, 2^x, 10^x.
inline constexpr bool isExpFamily(ElemFunc F) {
  return F == ElemFunc::Exp || F == ElemFunc::Exp2 || F == ElemFunc::Exp10;
}

} // namespace rfp

#endif // RFP_SUPPORT_ELEMFUNC_H
