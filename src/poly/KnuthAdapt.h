//===- poly/KnuthAdapt.h - Knuth coefficient adaptation --------*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Knuth's coefficient adaptation (TAOCP vol. 2, Section 4.6.4; paper
/// Section 3): reformulates a degree-4/5/6 polynomial so it evaluates with
/// fewer multiplications than Horner's rule at the cost of extra additions.
/// Degrees 5 and 6 require a real root of a cubic, computed in double by an
/// external solver (poly/Cubic.h) -- exactly the rounding-error source that
/// motivates the paper's integrated generate-check-constrain loop.
///
/// Evaluation forms (paper equations 3, 5, 8):
///   deg 4: y = (x+a0)*x + a1;  u = ((y + x + a2)*y + a3) * a4
///   deg 5: y = (x+a0)^2;       u = (((y+a1)*y + a2)*(x+a3) + a4) * a5
///   deg 6: z = (x+a0)*x + a1;  w = (x+a2)*z + a3;
///          u = ((w + z + a4)*w + a5) * a6
///
//===----------------------------------------------------------------------===//

#ifndef RFP_POLY_KNUTHADAPT_H
#define RFP_POLY_KNUTHADAPT_H

#include <cassert>

namespace rfp {

/// Evaluates the adapted form given the raw coefficient array (single
/// source of truth for the operation order; both the generator's checker
/// and the shipped implementations route through this).
inline double evalKnuthOps(unsigned Degree, const double *A, double X) {
  switch (Degree) {
  case 4: {
    double Y = (X + A[0]) * X + A[1];
    return ((Y + X + A[2]) * Y + A[3]) * A[4];
  }
  case 5: {
    double T = X + A[0];
    double Y = T * T;
    return (((Y + A[1]) * Y + A[2]) * (X + A[3]) + A[4]) * A[5];
  }
  case 6: {
    double Z = (X + A[0]) * X + A[1];
    double W = (X + A[2]) * Z + A[3];
    return ((W + Z + A[4]) * W + A[5]) * A[6];
  }
  default:
    assert(false && "unsupported adapted degree");
    return 0.0;
  }
}

/// A polynomial in Knuth-adapted form.
struct KnuthAdapted {
  bool Valid = false; ///< Adaptation exists (degree 4..6, nonzero lead).
  unsigned Degree = 0;
  double A[7] = {}; ///< Adapted coefficients alpha_0..alpha_Degree.
};

/// Adapts the coefficients of a degree-4/5/6 polynomial (C[0..Degree],
/// C[Degree] != 0). Degrees outside 4..6 return an invalid result, matching
/// the paper: adaptation "is feasible for any polynomial of degree greater
/// than 3" and RLibm polynomials never exceed degree 6.
KnuthAdapted adaptCoefficients(const double *C, unsigned Degree);

/// Evaluates an adapted polynomial (operation order fixed; this is the code
/// the generator validates and the libm ships).
double evalKnuth(const KnuthAdapted &KA, double X);

} // namespace rfp

#endif // RFP_POLY_KNUTHADAPT_H
