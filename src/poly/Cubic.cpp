//===- poly/Cubic.cpp - Real root of a cubic equation ---------------------===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/Cubic.h"

#include <cassert>
#include <cmath>

using namespace rfp;

static double evalCubic(double A, double B, double C, double D, double X) {
  return std::fma(std::fma(std::fma(A, X, B), X, C), X, D);
}

double rfp::realRootOfCubic(double A, double B, double C, double D) {
  assert(A != 0.0 && "not a cubic");
  assert(std::isfinite(A) && std::isfinite(B) && std::isfinite(C) &&
         std::isfinite(D) && "cubic coefficients must be finite");

  // Normalize so the leading coefficient is positive: p(-inf) < 0 < p(+inf).
  if (A < 0) {
    A = -A;
    B = -B;
    C = -C;
    D = -D;
  }

  // Bracket a sign change by doubling outward from a magnitude estimate.
  // The Cauchy bound |root| <= 1 + max|coef|/|A| always brackets.
  double Bound = 1.0 + std::fmax(std::fabs(B), std::fmax(std::fabs(C),
                                                         std::fabs(D))) /
                           A;
  double Lo = -Bound, Hi = Bound;
  assert(evalCubic(A, B, C, D, Lo) <= 0 && evalCubic(A, B, C, D, Hi) >= 0 &&
         "Cauchy bound failed to bracket");

  // Bisection to the last representable bit: terminates in <= ~2100 steps
  // because the midpoint eventually equals an endpoint in double.
  for (int Iter = 0; Iter < 4000; ++Iter) {
    double Mid = 0.5 * (Lo + Hi);
    if (Mid <= Lo || Mid >= Hi)
      break;
    double V = evalCubic(A, B, C, D, Mid);
    if (V == 0.0)
      return Mid;
    if (V < 0)
      Lo = Mid;
    else
      Hi = Mid;
  }

  // A couple of Newton polish steps from the midpoint improve the last bit
  // when the root is well-conditioned; fall back to Lo otherwise.
  double X = 0.5 * (Lo + Hi);
  for (int Iter = 0; Iter < 3; ++Iter) {
    double F = evalCubic(A, B, C, D, X);
    double DF = std::fma(std::fma(3 * A, X, 2 * B), X, C);
    if (DF == 0.0 || !std::isfinite(F))
      break;
    double Next = X - F / DF;
    if (!std::isfinite(Next) || Next < Lo || Next > Hi)
      break;
    X = Next;
  }
  return X;
}
