//===- poly/EvalScheme.cpp - Polynomial evaluation schemes ----------------===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/EvalScheme.h"

#include <cassert>

using namespace rfp;

double rfp::evalHorner(const double *C, unsigned Degree, double X) {
  double Acc = C[Degree];
  for (unsigned I = Degree; I-- > 0;)
    Acc = Acc * X + C[I];
  return Acc;
}

double rfp::evalEstrin(const double *C, unsigned Degree, double X) {
  assert(Degree <= MaxPolyDegree);
  double V[MaxPolyDegree + 1];
  for (unsigned I = 0; I <= Degree; ++I)
    V[I] = C[I];
  double Y = X;
  unsigned N = Degree;
  while (N >= 1) {
    unsigned Half = N / 2;
    for (unsigned I = 0; I <= Half; ++I) {
      if (2 * I + 1 <= N)
        V[I] = V[2 * I] + V[2 * I + 1] * Y;
      else
        V[I] = V[2 * I];
    }
    N = Half;
    Y = Y * Y;
  }
  return V[0];
}

double rfp::evalEstrinFMA(const double *C, unsigned Degree, double X) {
  assert(Degree <= MaxPolyDegree);
  double V[MaxPolyDegree + 1];
  for (unsigned I = 0; I <= Degree; ++I)
    V[I] = C[I];
  double Y = X;
  unsigned N = Degree;
  while (N >= 1) {
    unsigned Half = N / 2;
    for (unsigned I = 0; I <= Half; ++I) {
      if (2 * I + 1 <= N)
        V[I] = std::fma(V[2 * I + 1], Y, V[2 * I]);
      else
        V[I] = V[2 * I];
    }
    N = Half;
    Y = Y * Y;
  }
  return V[0];
}

double rfp::evalScheme(EvalScheme S, const double *C, unsigned Degree,
                       double X, const KnuthAdapted *KA) {
  switch (S) {
  case EvalScheme::Horner:
    return evalHorner(C, Degree, X);
  case EvalScheme::Knuth:
    assert(KA && KA->Valid && "Knuth scheme requires adapted coefficients");
    return evalKnuth(*KA, X);
  case EvalScheme::Estrin:
    return evalEstrin(C, Degree, X);
  case EvalScheme::EstrinFMA:
    return evalEstrinFMA(C, Degree, X);
  }
  assert(false && "unknown evaluation scheme");
  return 0.0;
}
