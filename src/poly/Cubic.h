//===- poly/Cubic.h - Real root of a cubic equation ------------*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finds a real root of a*x^3 + b*x^2 + c*x + d in double precision. Every
/// real cubic has one (odd degree), which is what guarantees Knuth's
/// adaptation exists for degrees 5 and 6 (paper Sections 3.2-3.3). The
/// paper uses "an external cubic solver in double precision"; we bracket by
/// doubling and then bisect to the last bit, so the result is within one
/// ulp of a true root regardless of conditioning.
///
//===----------------------------------------------------------------------===//

#ifndef RFP_POLY_CUBIC_H
#define RFP_POLY_CUBIC_H

namespace rfp {

/// Returns a real root of a*x^3 + b*x^2 + c*x + d (requires a != 0, finite
/// coefficients).
double realRootOfCubic(double A, double B, double C, double D);

} // namespace rfp

#endif // RFP_POLY_CUBIC_H
