//===- poly/Polynomial.h - Polynomial representations ----------*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense polynomial representations used across the pipeline: the LP solver
/// produces exact rational coefficients, which are rounded once to double
/// (the representation H in which all shipped code evaluates).
///
//===----------------------------------------------------------------------===//

#ifndef RFP_POLY_POLYNOMIAL_H
#define RFP_POLY_POLYNOMIAL_H

#include "support/Rational.h"

#include <vector>

namespace rfp {

/// Largest polynomial degree the pipeline supports. The paper's generator
/// caps single polynomials at degree 6 and splits the domain beyond that;
/// we allow a little slack for experiments.
inline constexpr unsigned MaxPolyDegree = 8;

/// A polynomial with double coefficients: C[0] + C[1]*x + ... + C[d]*x^d.
struct Polynomial {
  std::vector<double> Coeffs;

  Polynomial() = default;
  explicit Polynomial(std::vector<double> C) : Coeffs(std::move(C)) {}

  unsigned degree() const {
    assert(!Coeffs.empty());
    return static_cast<unsigned>(Coeffs.size() - 1);
  }
};

/// A polynomial with exact rational coefficients (LP solver output).
struct RationalPolynomial {
  std::vector<Rational> Coeffs;

  unsigned degree() const {
    assert(!Coeffs.empty());
    return static_cast<unsigned>(Coeffs.size() - 1);
  }

  /// Rounds every coefficient to the nearest double. The paper notes this
  /// rounding is already a non-linear step that the generate-check-constrain
  /// loop must absorb (Section 5).
  Polynomial toDouble() const {
    Polynomial P;
    P.Coeffs.reserve(Coeffs.size());
    for (const Rational &C : Coeffs)
      P.Coeffs.push_back(C.toDouble());
    return P;
  }

  /// Exact evaluation at a rational point (Horner in exact arithmetic).
  Rational evalExact(const Rational &X) const {
    Rational Acc;
    for (size_t I = Coeffs.size(); I-- > 0;)
      Acc = Acc * X + Coeffs[I];
    return Acc;
  }
};

} // namespace rfp

#endif // RFP_POLY_POLYNOMIAL_H
