//===- poly/EvalScheme.h - Polynomial evaluation schemes -------*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four polynomial evaluation schemes the paper compares:
///
///  * Horner      -- the RLibm baseline: minimal operation count, but a
///                   fully serial dependence chain.
///  * Knuth       -- Knuth's coefficient adaptation (TAOCP vol. 2): trades
///                   multiplications for additions (paper Section 3).
///  * Estrin      -- parallel sub-expressions (A + B*x) recombined over
///                   x^2, x^4, ... exposing ILP (paper Section 4,
///                   Algorithm 1).
///  * EstrinFMA   -- Estrin with every (A + B*y) fused into one fma,
///                   halving the rounding steps (paper Section 4).
///
/// The evaluators here define the *exact* operation order. The generator's
/// check step (Algorithm 2, lines 13-17) evaluates candidate polynomials
/// with these very routines, so what is validated is what ships. The inline
/// template forms (degree known at compile time) compile to the same
/// operation sequence and are what the libm implementations use.
///
//===----------------------------------------------------------------------===//

#ifndef RFP_POLY_EVALSCHEME_H
#define RFP_POLY_EVALSCHEME_H

#include "poly/KnuthAdapt.h"
#include "poly/Polynomial.h"

#include <cmath>

namespace rfp {

/// Identifies one of the paper's four evaluation strategies.
enum class EvalScheme { Horner, Knuth, Estrin, EstrinFMA };

inline constexpr EvalScheme AllEvalSchemes[4] = {
    EvalScheme::Horner, EvalScheme::Knuth, EvalScheme::Estrin,
    EvalScheme::EstrinFMA};

/// Display name matching the paper ("RLIBM", "RLIBM-Knuth", ...).
inline const char *evalSchemeName(EvalScheme S) {
  switch (S) {
  case EvalScheme::Horner:
    return "horner";
  case EvalScheme::Knuth:
    return "knuth";
  case EvalScheme::Estrin:
    return "estrin";
  case EvalScheme::EstrinFMA:
    return "estrin-fma";
  }
  return "??";
}

/// Horner's rule: C0 + x*(C1 + x*(C2 + ...)).
double evalHorner(const double *C, unsigned Degree, double X);

/// Estrin's method (Algorithm 1), mul+add form.
double evalEstrin(const double *C, unsigned Degree, double X);

/// Estrin's method with each (A + B*y) computed as fma(B, y, A).
double evalEstrinFMA(const double *C, unsigned Degree, double X);

/// Evaluates a polynomial under the given scheme. For EvalScheme::Knuth the
/// caller must pass the adapted form \p KA (see adaptCoefficients); other
/// schemes use the plain coefficients \p C.
double evalScheme(EvalScheme S, const double *C, unsigned Degree, double X,
                  const KnuthAdapted *KA = nullptr);

//===----------------------------------------------------------------------===//
// Compile-time-degree inline forms (used by the shipped functions in
// src/libm; identical operation order to the runtime routines above).
//===----------------------------------------------------------------------===//

template <unsigned Degree>
inline double hornerN(const double *C, double X) {
  double Acc = C[Degree];
  for (unsigned I = Degree; I-- > 0;)
    Acc = Acc * X + C[I];
  return Acc;
}

template <unsigned Degree>
inline double estrinFMAN(const double *C, double X) {
  double V[Degree + 1];
  for (unsigned I = 0; I <= Degree; ++I)
    V[I] = C[I];
  double Y = X;
  unsigned N = Degree;
  while (N >= 1) {
    unsigned Half = N / 2;
    for (unsigned I = 0; I <= Half; ++I) {
      if (2 * I + 1 <= N)
        V[I] = std::fma(V[2 * I + 1], Y, V[2 * I]);
      else
        V[I] = V[2 * I];
    }
    N = Half;
    Y = Y * Y;
  }
  return V[0];
}

template <unsigned Degree>
inline double estrinN(const double *C, double X) {
  double V[Degree + 1];
  for (unsigned I = 0; I <= Degree; ++I)
    V[I] = C[I];
  double Y = X;
  unsigned N = Degree;
  while (N >= 1) {
    unsigned Half = N / 2;
    for (unsigned I = 0; I <= Half; ++I) {
      if (2 * I + 1 <= N)
        V[I] = V[2 * I] + V[2 * I + 1] * Y;
      else
        V[I] = V[2 * I];
    }
    N = Half;
    Y = Y * Y;
  }
  return V[0];
}

//===----------------------------------------------------------------------===//
// Hand-unrolled specializations for the degrees the generator produces.
// The operation order is *identical* to the generic loop above (and hence
// to evalEstrin/evalEstrinFMA, which the generator validates against);
// EvalSchemeTest.CompileTimeFormsMatchRuntimeForms pins the bit-for-bit
// equality. The explicit scalar temporaries compile to the short parallel
// dependence chains the paper's performance argument relies on, which the
// array-based loop form does not reliably achieve.
//===----------------------------------------------------------------------===//

template <> inline double estrinFMAN<2>(const double *C, double X) {
  double V0 = std::fma(C[1], X, C[0]);
  double Y = X * X;
  return std::fma(C[2], Y, V0);
}

template <> inline double estrinFMAN<3>(const double *C, double X) {
  double V0 = std::fma(C[1], X, C[0]);
  double V1 = std::fma(C[3], X, C[2]);
  double Y = X * X;
  return std::fma(V1, Y, V0);
}

template <> inline double estrinFMAN<4>(const double *C, double X) {
  double V0 = std::fma(C[1], X, C[0]);
  double V1 = std::fma(C[3], X, C[2]);
  double Y = X * X;
  double W0 = std::fma(V1, Y, V0);
  double Y2 = Y * Y;
  return std::fma(C[4], Y2, W0);
}

template <> inline double estrinFMAN<5>(const double *C, double X) {
  double V0 = std::fma(C[1], X, C[0]);
  double V1 = std::fma(C[3], X, C[2]);
  double V2 = std::fma(C[5], X, C[4]);
  double Y = X * X;
  double W0 = std::fma(V1, Y, V0);
  double Y2 = Y * Y;
  return std::fma(V2, Y2, W0);
}

template <> inline double estrinFMAN<6>(const double *C, double X) {
  double V0 = std::fma(C[1], X, C[0]);
  double V1 = std::fma(C[3], X, C[2]);
  double V2 = std::fma(C[5], X, C[4]);
  double Y = X * X;
  double W0 = std::fma(V1, Y, V0);
  double W1 = std::fma(C[6], Y, V2);
  double Y2 = Y * Y;
  return std::fma(W1, Y2, W0);
}

template <> inline double estrinN<2>(const double *C, double X) {
  double V0 = C[0] + C[1] * X;
  double Y = X * X;
  return V0 + C[2] * Y;
}

template <> inline double estrinN<3>(const double *C, double X) {
  double V0 = C[0] + C[1] * X;
  double V1 = C[2] + C[3] * X;
  double Y = X * X;
  return V0 + V1 * Y;
}

template <> inline double estrinN<4>(const double *C, double X) {
  double V0 = C[0] + C[1] * X;
  double V1 = C[2] + C[3] * X;
  double Y = X * X;
  double W0 = V0 + V1 * Y;
  double Y2 = Y * Y;
  return W0 + C[4] * Y2;
}

template <> inline double estrinN<5>(const double *C, double X) {
  double V0 = C[0] + C[1] * X;
  double V1 = C[2] + C[3] * X;
  double V2 = C[4] + C[5] * X;
  double Y = X * X;
  double W0 = V0 + V1 * Y;
  double Y2 = Y * Y;
  return W0 + V2 * Y2;
}

template <> inline double estrinN<6>(const double *C, double X) {
  double V0 = C[0] + C[1] * X;
  double V1 = C[2] + C[3] * X;
  double V2 = C[4] + C[5] * X;
  double Y = X * X;
  double W0 = V0 + V1 * Y;
  double W1 = V2 + C[6] * Y;
  double Y2 = Y * Y;
  return W0 + W1 * Y2;
}

} // namespace rfp

#endif // RFP_POLY_EVALSCHEME_H
