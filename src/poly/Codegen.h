//===- poly/Codegen.h - C code emission for evaluation schemes -*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits compilable C code for a polynomial under a given evaluation scheme.
/// The emitted operation order matches rfp::evalScheme exactly, so a
/// downstream user can paste the generated code into their own library and
/// keep the correctness guarantee the generator validated. This mirrors the
/// paper's artifact, which ships the 24 generated implementations as C
/// source.
///
//===----------------------------------------------------------------------===//

#ifndef RFP_POLY_CODEGEN_H
#define RFP_POLY_CODEGEN_H

#include "poly/EvalScheme.h"

#include <string>

namespace rfp {

/// Renders a double as a hex-float literal (lossless round trip).
std::string doubleLiteral(double V);

/// Emits a C expression block computing the polynomial at variable \p Var
/// into variable \p Result. Statements are indented with \p Indent.
/// For EvalScheme::Knuth, \p KA must be the adapted form.
std::string emitPolyEval(EvalScheme S, const double *C, unsigned Degree,
                         const std::string &Var, const std::string &Result,
                         const std::string &Indent,
                         const KnuthAdapted *KA = nullptr);

/// Emits a complete C function `double NAME(double VAR)` evaluating the
/// polynomial under the scheme.
std::string emitPolyFunction(EvalScheme S, const double *C, unsigned Degree,
                             const std::string &Name,
                             const KnuthAdapted *KA = nullptr);

/// Emits the SIMD-friendly (structure-of-arrays) form of a piecewise
/// coefficient table: per-coefficient rows padded to a multiple of four
/// pieces and 32-byte aligned, so a vector kernel can gather coefficient I
/// for four lanes' pieces with one instruction. \p Coeffs is row-major
/// [NumPieces][CoeffStride] with coefficient D of piece P at
/// Coeffs[P * CoeffStride + D]; \p Degrees has one entry per piece. The
/// emitted initializer is an `rfp::libm::BatchSchemeTable` named
/// `<Ident>Batch` (the emitter only produces that text; it does not depend
/// on the libm headers).
std::string emitBatchTable(const std::string &Ident, bool Available,
                           int NumPieces, const unsigned *Degrees,
                           const double *Coeffs, unsigned CoeffStride);

} // namespace rfp

#endif // RFP_POLY_CODEGEN_H
