//===- poly/KnuthAdapt.cpp - Knuth coefficient adaptation -----------------===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/KnuthAdapt.h"

#include "poly/Cubic.h"

#include <cassert>
#include <cmath>

using namespace rfp;

/// Degree 4 (paper equation 4): closed form.
static KnuthAdapted adapt4(const double *U) {
  double U4 = U[4];
  KnuthAdapted R;
  R.Valid = true;
  R.Degree = 4;
  double A0 = 0.5 * (U[3] / U4 - 1.0);
  double Beta = U[2] / U4 - A0 * (A0 + 1.0);
  double A1 = U[1] / U4 - A0 * Beta;
  double A2 = Beta - 2.0 * A1;
  double A3 = U[0] / U4 - A1 * (A1 + A2);
  R.A[0] = A0;
  R.A[1] = A1;
  R.A[2] = A2;
  R.A[3] = A3;
  R.A[4] = U4;
  return R;
}

/// Degree 5 (paper equations 6-7): alpha_0 is a real root of
///   -40 a^3 + 24 q a^2 - 2 (p + 2 q^2) a + (p q - u2/u5) = 0.
static KnuthAdapted adapt5(const double *U) {
  double U5 = U[5];
  double P = U[3] / U5;
  double Q = U[4] / U5;
  double A0 = realRootOfCubic(-40.0, 24.0 * Q, -2.0 * (P + 2.0 * Q * Q),
                              P * Q - U[2] / U5);
  double A1 = P - 4.0 * Q * A0 + 10.0 * A0 * A0;
  double A3 = Q - 4.0 * A0;
  double A0Sq = A0 * A0;
  double A2 = U[1] / U5 - A0Sq * (A1 + A0Sq) -
              2.0 * A0 * A3 * (A1 + 2.0 * A0Sq);
  double A4 = U[0] / U5 - A2 * A3 - A0Sq * A3 * (A1 + A0Sq);
  KnuthAdapted R;
  R.Valid = true;
  R.Degree = 5;
  R.A[0] = A0;
  R.A[1] = A1;
  R.A[2] = A2;
  R.A[3] = A3;
  R.A[4] = A4;
  R.A[5] = U5;
  return R;
}

/// Degree 6 (paper equations 9-12): after normalizing u6 = 1, beta_6 is a
/// real root of
///   2 y^3 + (2 b4 - b2 + 1) y^2 + (2 b5 - b2 b4 - b3) y + (u1 - b2 b5) = 0.
static KnuthAdapted adapt6(const double *U) {
  double U6 = U[6];
  double V[6]; // Normalized u0..u5.
  for (int I = 0; I < 6; ++I)
    V[I] = U[I] / U6;

  double B1 = 0.5 * (V[5] - 1.0);
  double B2 = V[4] - B1 * (B1 + 1.0);
  double B3 = V[3] - B1 * B2;
  double B4 = B1 - B2;
  double B5 = V[2] - B1 * B3;
  double B6 = realRootOfCubic(2.0, 2.0 * B4 - B2 + 1.0,
                              2.0 * B5 - B2 * B4 - B3, V[1] - B2 * B5);
  double B7 = B6 * B6 + B4 * B6 + B5;
  double B8 = B3 - B6 - B7;

  KnuthAdapted R;
  R.Valid = true;
  R.Degree = 6;
  R.A[0] = B2 - 2.0 * B6;
  R.A[2] = B1 - R.A[0];
  R.A[1] = B6 - R.A[0] * R.A[2];
  R.A[3] = B7 - R.A[1] * R.A[2];
  R.A[4] = B8 - B7 - R.A[1];
  R.A[5] = V[0] - B7 * B8;
  R.A[6] = U6;
  return R;
}

KnuthAdapted rfp::adaptCoefficients(const double *C, unsigned Degree) {
  if (Degree < 4 || Degree > 6 || C[Degree] == 0.0)
    return KnuthAdapted();
  switch (Degree) {
  case 4:
    return adapt4(C);
  case 5:
    return adapt5(C);
  default:
    return adapt6(C);
  }
}

double rfp::evalKnuth(const KnuthAdapted &KA, double X) {
  assert(KA.Valid && "evaluating an invalid adaptation");
  return evalKnuthOps(KA.Degree, KA.A, X);
}
