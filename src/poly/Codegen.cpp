//===- poly/Codegen.cpp - C code emission for evaluation schemes ----------===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/Codegen.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <vector>

using namespace rfp;

std::string rfp::doubleLiteral(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

namespace {

/// Emission state: accumulates statements and fresh temporaries.
class Emitter {
public:
  Emitter(std::string Indent) : Indent(std::move(Indent)) {}

  std::string fresh() { return "t" + std::to_string(NextTemp++); }

  void stmt(const std::string &Lhs, const std::string &Rhs) {
    Code += Indent + "double " + Lhs + " = " + Rhs + ";\n";
  }
  void assign(const std::string &Lhs, const std::string &Rhs) {
    Code += Indent + Lhs + " = " + Rhs + ";\n";
  }

  std::string Code;

private:
  std::string Indent;
  unsigned NextTemp = 0;
};

/// Emits the Estrin reduction; Fused selects fma vs mul+add.
std::string emitEstrin(Emitter &E, const double *C, unsigned Degree,
                       const std::string &Var, bool Fused) {
  std::vector<std::string> V;
  for (unsigned I = 0; I <= Degree; ++I)
    V.push_back(doubleLiteral(C[I]));
  std::string Y = Var;
  unsigned N = Degree;
  unsigned Level = 0;
  while (N >= 1) {
    unsigned Half = N / 2;
    std::vector<std::string> Next;
    for (unsigned I = 0; I <= Half; ++I) {
      if (2 * I + 1 <= N) {
        std::string T = E.fresh();
        if (Fused)
          E.stmt(T, "__builtin_fma(" + V[2 * I + 1] + ", " + Y + ", " +
                        V[2 * I] + ")");
        else
          E.stmt(T, V[2 * I] + " + " + V[2 * I + 1] + " * " + Y);
        Next.push_back(T);
      } else {
        Next.push_back(V[2 * I]);
      }
    }
    V = std::move(Next);
    N = Half;
    if (N >= 1) {
      std::string Y2 = "y" + std::to_string(++Level);
      E.stmt(Y2, Y + " * " + Y);
      Y = Y2;
    }
  }
  return V[0];
}

std::string emitHorner(Emitter &E, const double *C, unsigned Degree,
                       const std::string &Var) {
  std::string Acc = doubleLiteral(C[Degree]);
  for (unsigned I = Degree; I-- > 0;) {
    std::string T = E.fresh();
    E.stmt(T, Acc + " * " + Var + " + " + doubleLiteral(C[I]));
    Acc = T;
  }
  return Acc;
}

std::string emitKnuth(Emitter &E, const KnuthAdapted &KA,
                      const std::string &X) {
  auto L = [&](unsigned I) { return doubleLiteral(KA.A[I]); };
  switch (KA.Degree) {
  case 4: {
    E.stmt("y", "(" + X + " + " + L(0) + ") * " + X + " + " + L(1));
    std::string R = E.fresh();
    E.stmt(R, "((y + " + X + " + " + L(2) + ") * y + " + L(3) + ") * " + L(4));
    return R;
  }
  case 5: {
    E.stmt("t", X + " + " + L(0));
    E.stmt("y", "t * t");
    std::string R = E.fresh();
    E.stmt(R, "(((y + " + L(1) + ") * y + " + L(2) + ") * (" + X + " + " +
                  L(3) + ") + " + L(4) + ") * " + L(5));
    return R;
  }
  case 6: {
    E.stmt("z", "(" + X + " + " + L(0) + ") * " + X + " + " + L(1));
    E.stmt("w", "(" + X + " + " + L(2) + ") * z + " + L(3));
    std::string R = E.fresh();
    E.stmt(R, "((w + z + " + L(4) + ") * w + " + L(5) + ") * " + L(6));
    return R;
  }
  default:
    assert(false && "unsupported adapted degree");
    return "0.0";
  }
}

} // namespace

std::string rfp::emitPolyEval(EvalScheme S, const double *C, unsigned Degree,
                              const std::string &Var,
                              const std::string &Result,
                              const std::string &Indent,
                              const KnuthAdapted *KA) {
  Emitter E(Indent);
  std::string Val;
  switch (S) {
  case EvalScheme::Horner:
    Val = emitHorner(E, C, Degree, Var);
    break;
  case EvalScheme::Knuth:
    assert(KA && KA->Valid && "Knuth emission requires adapted coefficients");
    Val = emitKnuth(E, *KA, Var);
    break;
  case EvalScheme::Estrin:
    Val = emitEstrin(E, C, Degree, Var, /*Fused=*/false);
    break;
  case EvalScheme::EstrinFMA:
    Val = emitEstrin(E, C, Degree, Var, /*Fused=*/true);
    break;
  }
  E.assign(Result, Val);
  return E.Code;
}

std::string rfp::emitPolyFunction(EvalScheme S, const double *C,
                                  unsigned Degree, const std::string &Name,
                                  const KnuthAdapted *KA) {
  std::string Code = "double " + Name + "(double x) {\n";
  Code += "  double result;\n";
  Code += emitPolyEval(S, C, Degree, "x", "result", "  ", KA);
  Code += "  return result;\n}\n";
  return Code;
}

std::string rfp::emitBatchTable(const std::string &Ident, bool Available,
                                int NumPieces, const unsigned *Degrees,
                                const double *Coeffs, unsigned CoeffStride) {
  assert(NumPieces >= 1 && "batch table needs at least one piece");
  int Pad = (NumPieces + 3) & ~3;

  unsigned MaxDegree = 0;
  for (int P = 0; P < NumPieces; ++P)
    MaxDegree = std::max(MaxDegree, Degrees[P]);
  assert(MaxDegree < CoeffStride && "degree exceeds coefficient stride");

  // Distinct degrees in ascending order (at most four: the generator's
  // degree ladder).
  std::vector<unsigned> Distinct;
  for (int P = 0; P < NumPieces; ++P)
    if (std::find(Distinct.begin(), Distinct.end(), Degrees[P]) ==
        Distinct.end())
      Distinct.push_back(Degrees[P]);
  std::sort(Distinct.begin(), Distinct.end());
  assert(Distinct.size() <= 4 && "more distinct degrees than the ladder");
  unsigned Uniform = Distinct.size() == 1 ? Distinct[0] : 0;

  std::string Out;
  char Buf[128];

  // One row per coefficient index; pad pieces get 0.0 (never gathered: the
  // kernels clamp piece indexes to [0, NumPieces)).
  Out += "alignas(32) inline constexpr double " + Ident + "BatchCoeffs[] = {\n";
  for (unsigned D = 0; D < CoeffStride; ++D) {
    Out += "    ";
    for (int P = 0; P < Pad; ++P) {
      std::snprintf(Buf, sizeof(Buf), "%a,",
                    P < NumPieces ? Coeffs[P * CoeffStride + D] : 0.0);
      Out += Buf;
    }
    Out += "\n";
  }
  Out += "};\n";

  Out += "alignas(16) inline constexpr int32_t " + Ident + "BatchDegrees[] = {";
  for (int P = 0; P < Pad; ++P) {
    std::snprintf(Buf, sizeof(Buf), "%u,",
                  Degrees[P < NumPieces ? P : NumPieces - 1]);
    Out += Buf;
  }
  Out += "};\n";

  std::snprintf(Buf, sizeof(Buf),
                "    /*Available=*/%s, /*NumPieces=*/%d, /*PiecePad=*/%d,\n",
                Available ? "true" : "false", NumPieces, Pad);
  Out += "inline constexpr rfp::libm::BatchSchemeTable " + Ident + "Batch = {\n";
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "    /*UniformDegree=*/%u, /*NumDistinctDegrees=*/%zu, {",
                Uniform, Distinct.size());
  Out += Buf;
  for (size_t I = 0; I < 4; ++I) {
    std::snprintf(Buf, sizeof(Buf), "%u,",
                  I < Distinct.size() ? Distinct[I] : 0u);
    Out += Buf;
  }
  Out += "},\n    " + Ident + "BatchDegrees, " + Ident + "BatchCoeffs,\n};\n\n";
  return Out;
}
