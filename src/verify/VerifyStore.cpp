//===- verify/VerifyStore.cpp - Resumable verification shards -------------===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/VerifyStore.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

using namespace rfp;
using namespace rfp::verify;
using namespace rfp::verify::store;

namespace {

constexpr char Magic[8] = {'R', 'F', 'P', 'V', 'R', 'F', 'Y', '1'};
constexpr uint32_t FormatVersion = 1;
/// Fixed-size prefix of a serialized unit block (records follow).
constexpr size_t UnitFixedBytes = 80;
constexpr size_t RecordBytes = 32;
/// Manifest config lines are bounded so the text round-trip stays simple.
constexpr size_t MaxConfigLine = 2048;

constexpr uint64_t FnvOffset = 14695981039346656037ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

uint64_t fnv1a(const unsigned char *Data, size_t Len, uint64_t H) {
  for (size_t I = 0; I < Len; ++I) {
    H ^= Data[I];
    H *= FnvPrime;
  }
  return H;
}

/// Fixed 72-byte file header. NumBlocks, PayloadBytes and Checksum are
/// zero until the finalize rewrite stamps them, so validation rejects an
/// unfinished file even if it somehow landed under the final name.
struct Header {
  char Mag[8];
  uint32_t Version;
  uint32_t ShardIdx;
  uint32_t NumShards;
  uint32_t Pad0;
  uint64_t ConfigHash;
  uint64_t NumUnits;
  uint64_t UnitBegin;
  uint64_t UnitEnd;
  uint64_t NumBlocks;
  uint64_t Checksum;
};
static_assert(sizeof(Header) == 72, "packed header layout");

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

void put32(std::vector<unsigned char> &Out, uint32_t V) {
  size_t At = Out.size();
  Out.resize(At + 4);
  std::memcpy(Out.data() + At, &V, 4);
}

void put64(std::vector<unsigned char> &Out, uint64_t V) {
  size_t At = Out.size();
  Out.resize(At + 8);
  std::memcpy(Out.data() + At, &V, 8);
}

void putF64(std::vector<unsigned char> &Out, double V) {
  size_t At = Out.size();
  Out.resize(At + 8);
  std::memcpy(Out.data() + At, &V, 8);
}

struct Cursor {
  const unsigned char *P;
  const unsigned char *End;
  bool Ok = true;

  uint32_t get32() {
    uint32_t V = 0;
    if (End - P < 4) {
      Ok = false;
      return 0;
    }
    std::memcpy(&V, P, 4);
    P += 4;
    return V;
  }
  uint64_t get64() {
    uint64_t V = 0;
    if (End - P < 8) {
      Ok = false;
      return 0;
    }
    std::memcpy(&V, P, 8);
    P += 8;
    return V;
  }
  double getF64() {
    double V = 0;
    if (End - P < 8) {
      Ok = false;
      return 0;
    }
    std::memcpy(&V, P, 8);
    P += 8;
    return V;
  }
};

/// Serializes one unit outcome: an 80-byte fixed prefix followed by 32
/// packed bytes per mismatch record.
void serializeUnit(const UnitOutcome &U, std::vector<unsigned char> &Out) {
  put32(Out, static_cast<uint32_t>(U.U.Func));
  put32(Out, static_cast<uint32_t>(U.U.Scheme));
  put32(Out, U.U.FormatBits);
  put32(Out, static_cast<uint32_t>(U.R.Records.size()));
  put64(Out, U.U.Stride);
  put64(Out, U.U.NumEncodings);
  put64(Out, U.R.Inputs);
  put64(Out, U.R.Comparisons);
  put64(Out, U.R.Mismatches);
  put64(Out, U.R.OracleFast);
  put64(Out, U.R.OracleExact);
  putF64(Out, U.R.Millis);
  for (const Mismatch &M : U.R.Records) {
    put32(Out, M.XBits);
    put64(Out, M.GotEnc);
    put64(Out, M.WantEnc);
    unsigned char Tail[12] = {M.Func, M.Scheme, M.FormatBits, M.Mode,
                              M.Path, M.ISA,    M.Lane,       0,
                              0,      0,        0,            0};
    Out.insert(Out.end(), Tail, Tail + sizeof(Tail));
  }
}

bool deserializeUnit(Cursor &C, UnitOutcome &U) {
  U.U.Func = static_cast<ElemFunc>(C.get32());
  U.U.Scheme = static_cast<EvalScheme>(C.get32());
  U.U.FormatBits = C.get32();
  uint32_t NumRecords = C.get32();
  U.U.Stride = C.get64();
  U.U.NumEncodings = C.get64();
  U.R.Inputs = C.get64();
  U.R.Comparisons = C.get64();
  U.R.Mismatches = C.get64();
  U.R.OracleFast = C.get64();
  U.R.OracleExact = C.get64();
  U.R.Millis = C.getF64();
  if (!C.Ok || NumRecords > (1u << 20))
    return false;
  U.R.Records.clear();
  U.R.Records.reserve(NumRecords);
  for (uint32_t I = 0; I < NumRecords; ++I) {
    Mismatch M;
    M.XBits = C.get32();
    M.GotEnc = C.get64();
    M.WantEnc = C.get64();
    if (static_cast<size_t>(C.End - C.P) < 12)
      return false;
    M.Func = C.P[0];
    M.Scheme = C.P[1];
    M.FormatBits = C.P[2];
    M.Mode = C.P[3];
    M.Path = C.P[4];
    M.ISA = C.P[5];
    M.Lane = C.P[6];
    C.P += 12;
    U.R.Records.push_back(M);
  }
  U.Resumed = true;
  return C.Ok;
}

} // namespace

uint64_t store::hashConfigLine(const std::string &Line) {
  return fnv1a(reinterpret_cast<const unsigned char *>(Line.data()),
               Line.size(), FnvOffset);
}

std::string store::manifestPath(const std::string &Dir) {
  return Dir + "/verify.manifest";
}

std::string store::shardPath(const std::string &Dir, unsigned K, unsigned M) {
  return Dir + "/verify.shard" + std::to_string(K) + "of" + std::to_string(M) +
         ".bin";
}

bool store::writeOrCheckManifest(const std::string &Dir,
                                 const std::string &ConfigLine,
                                 const StoreConfig &C, std::string *Err) {
  if (ConfigLine.size() >= MaxConfigLine ||
      ConfigLine.find('\n') != std::string::npos)
    return fail(Err, "config line too long or multi-line");
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return fail(Err,
                "cannot create shard directory " + Dir + ": " + EC.message());

  std::string Path = manifestPath(Dir);
  if (std::filesystem::exists(Path)) {
    std::FILE *In = std::fopen(Path.c_str(), "r");
    if (!In)
      return fail(Err, "cannot open manifest " + Path);
    char Line[MaxConfigLine] = {0};
    unsigned Shards = 0;
    unsigned long long Units = 0;
    int N = std::fscanf(In,
                        "rfp-verify-manifest v1\n"
                        "config %2047[^\n]\n"
                        "shards %u\n"
                        "units %llu\n",
                        Line, &Shards, &Units);
    std::fclose(In);
    if (N != 3)
      return fail(Err, "malformed manifest " + Path);
    if (Line != ConfigLine || Shards != C.NumShards || Units != C.NumUnits)
      return fail(Err, "shard directory " + Dir +
                           " was built with a different sweep configuration");
    return true;
  }

  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "w");
  if (!F)
    return fail(Err, "cannot write " + Tmp);
  std::fprintf(F,
               "rfp-verify-manifest v1\n"
               "config %s\n"
               "shards %u\n"
               "units %llu\n",
               ConfigLine.c_str(), C.NumShards,
               static_cast<unsigned long long>(C.NumUnits));
  bool Ok = std::fflush(F) == 0;
  Ok = (std::fclose(F) == 0) && Ok;
  if (!Ok)
    return fail(Err, "short write to " + Tmp);
  std::filesystem::rename(Tmp, Path, EC);
  if (EC)
    return fail(Err, "cannot rename " + Tmp + ": " + EC.message());
  return true;
}

void store::shardUnitRange(const StoreConfig &C, unsigned K, uint64_t &Begin,
                           uint64_t &End) {
  uint64_t Per =
      C.NumShards ? (C.NumUnits + C.NumShards - 1) / C.NumShards : C.NumUnits;
  Begin = std::min<uint64_t>(C.NumUnits, static_cast<uint64_t>(K) * Per);
  End = std::min<uint64_t>(C.NumUnits, Begin + Per);
}

bool store::writeShard(const std::string &Dir, const StoreConfig &C, unsigned K,
                       const std::vector<UnitOutcome> &Units,
                       std::string *Err) {
  uint64_t Begin, End;
  shardUnitRange(C, K, Begin, End);
  if (Units.size() != End - Begin)
    return fail(Err, "shard " + std::to_string(K) + " expects " +
                         std::to_string(End - Begin) + " units, got " +
                         std::to_string(Units.size()));

  std::vector<unsigned char> Payload;
  for (const UnitOutcome &U : Units)
    serializeUnit(U, Payload);

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::string FinalPath = shardPath(Dir, K, C.NumShards);
  std::string TmpPath = FinalPath + ".tmp";
  std::FILE *F = std::fopen(TmpPath.c_str(), "wb");
  if (!F)
    return fail(Err, "cannot create " + TmpPath);

  Header H = {};
  std::memcpy(H.Mag, Magic, sizeof(Magic));
  H.Version = FormatVersion;
  H.ShardIdx = K;
  H.NumShards = C.NumShards;
  H.ConfigHash = C.ConfigHash;
  H.NumUnits = C.NumUnits;
  H.UnitBegin = Begin;
  H.UnitEnd = End;
  H.NumBlocks = Units.size();
  H.Checksum = fnv1a(Payload.data(), Payload.size(), FnvOffset);

  bool Ok = std::fwrite(&H, sizeof(H), 1, F) == 1;
  if (Ok && !Payload.empty())
    Ok = std::fwrite(Payload.data(), 1, Payload.size(), F) == Payload.size();
  Ok = Ok && std::fflush(F) == 0;
  Ok = (std::fclose(F) == 0) && Ok;
  if (!Ok) {
    std::filesystem::remove(TmpPath, EC);
    return fail(Err, "short write to " + TmpPath);
  }
  std::filesystem::rename(TmpPath, FinalPath, EC);
  if (EC)
    return fail(Err, "cannot rename " + TmpPath + ": " + EC.message());
  return true;
}

bool store::readShard(const std::string &Dir, const StoreConfig &C, unsigned K,
                      std::vector<UnitOutcome> &Out, std::string *Err) {
  std::string Path = shardPath(Dir, K, C.NumShards);
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return fail(Err, "cannot open shard " + Path);

  Header H = {};
  if (std::fread(&H, sizeof(H), 1, F) != 1) {
    std::fclose(F);
    return fail(Err, "truncated shard header in " + Path);
  }
  uint64_t WantBegin, WantEnd;
  shardUnitRange(C, K, WantBegin, WantEnd);
  if (std::memcmp(H.Mag, Magic, sizeof(Magic)) != 0 ||
      H.Version != FormatVersion || H.ShardIdx != K ||
      H.NumShards != C.NumShards || H.ConfigHash != C.ConfigHash ||
      H.NumUnits != C.NumUnits || H.UnitBegin != WantBegin ||
      H.UnitEnd != WantEnd || H.NumBlocks != WantEnd - WantBegin) {
    std::fclose(F);
    return fail(Err,
                "shard " + Path + " does not match the expected configuration");
  }

  std::vector<unsigned char> Payload;
  {
    long DataStart = static_cast<long>(sizeof(Header));
    std::fseek(F, 0, SEEK_END);
    long FileEnd = std::ftell(F);
    std::fseek(F, DataStart, SEEK_SET);
    if (FileEnd < DataStart) {
      std::fclose(F);
      return fail(Err, "truncated shard data in " + Path);
    }
    Payload.resize(static_cast<size_t>(FileEnd - DataStart));
    if (!Payload.empty() &&
        std::fread(Payload.data(), 1, Payload.size(), F) != Payload.size()) {
      std::fclose(F);
      return fail(Err, "truncated shard data in " + Path);
    }
  }
  std::fclose(F);

  if (fnv1a(Payload.data(), Payload.size(), FnvOffset) != H.Checksum)
    return fail(Err, "shard " + Path +
                         " checksum mismatch (corrupt or interrupted file)");

  Out.clear();
  Cursor Cur{Payload.data(), Payload.data() + Payload.size()};
  for (uint64_t I = 0; I < H.NumBlocks; ++I) {
    UnitOutcome U;
    if (!deserializeUnit(Cur, U))
      return fail(Err, "malformed unit block in " + Path);
    Out.push_back(std::move(U));
  }
  if (Cur.P != Cur.End)
    return fail(Err, "trailing bytes after unit blocks in " + Path);
  return true;
}

bool store::shardValid(const std::string &Dir, const StoreConfig &C,
                       unsigned K) {
  std::vector<UnitOutcome> Tmp;
  return readShard(Dir, C, K, Tmp);
}
