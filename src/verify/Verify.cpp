//===- verify/Verify.cpp - Exhaustive multi-format verification -----------===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit execution strategy. A unit's encoding space is processed in blocks
// of SweepConfig::BlockElems through parallelReduce with that exact chunk
// size, so the partition -- and therefore the merge order of counters and
// capped mismatch records -- is fixed by the configuration, not by the
// thread count. Per block:
//
//   1. Decode the block's encodings to float inputs (every FP(k, 8) value
//      with k <= 32 is exactly a float) and query the oracle once: the
//      certified fast path in batch form, the exact memoized oracle for
//      the leftovers. This happens under the default FP environment --
//      the oracle is the reference, not the thing under test.
//   2. Precompute the five per-mode wanted encodings from RO_34.
//   3. Evaluate the base combination (scalar cores, default FE lane) and
//      run the full five-mode comparison per input, remembering how many
//      modes misround per input (BaseBad).
//   4. For every other (path, lane) combination: evaluate, bit-compare H
//      against the base H. Identical bits inherit the base verdict --
//      count the five comparisons and BaseBad mismatches without
//      re-rounding. Divergent bits get the full five-mode comparison and
//      their own mismatch records.
//
// FE lanes pin the dynamic rounding mode only around the evaluation call
// itself: decode, oracle, and comparison all run under the default
// environment (they are mode-insensitive anyway -- FPFormat::roundDouble
// is integer-only -- but the lane is scoped tightly so the sweep tests
// exactly the public surface's own guard and nothing else). fesetround is
// per-thread, so parallel workers' lanes do not interfere.
//
//===----------------------------------------------------------------------===//

#include "verify/Verify.h"

#include "oracle/OracleCache.h"
#include "oracle/OracleFast.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "verify/VerifyStore.h"

#include <cfenv>
#include <chrono>
#include <cstring>

using namespace rfp;
using namespace rfp::verify;

//===----------------------------------------------------------------------===//
// Names and small helpers
//===----------------------------------------------------------------------===//

std::string verify::pathSpecName(const PathSpec &P) {
  if (P.Path == EvalPath::ScalarCore)
    return "scalar-core";
  return std::string("batch-") + libm::batchISAName(P.ISA);
}

const char *verify::feLaneName(FeLane L) {
  switch (L) {
  case FeLane::Default:
    return "default";
  case FeLane::Upward:
    return "fe-upward";
  case FeLane::Downward:
    return "fe-downward";
  case FeLane::TowardZero:
    return "fe-towardzero";
  }
  return "?";
}

int verify::feLaneMode(FeLane L) {
  switch (L) {
  case FeLane::Default:
    return -1;
  case FeLane::Upward:
    return FE_UPWARD;
  case FeLane::Downward:
    return FE_DOWNWARD;
  case FeLane::TowardZero:
    return FE_TOWARDZERO;
  }
  return -1;
}

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

std::vector<ElemFunc> effectiveFuncs(const SweepConfig &C) {
  if (!C.Funcs.empty())
    return C.Funcs;
  return std::vector<ElemFunc>(std::begin(AllElemFuncs),
                               std::end(AllElemFuncs));
}

std::vector<EvalScheme> effectiveSchemes(const SweepConfig &C) {
  if (!C.Schemes.empty())
    return C.Schemes;
  return std::vector<EvalScheme>(std::begin(AllEvalSchemes),
                                 std::end(AllEvalSchemes));
}

/// The canonical one-line identity of a sweep: everything the unit plan,
/// the comparison matrix, and the record selection depend on. The shard
/// manifest stores it verbatim; shard headers pin its hash. Threads are
/// deliberately absent (results are thread-count invariant); BlockElems
/// and the record cap are present because they shape the record lists.
std::string configLine(const SweepConfig &C, const std::vector<Unit> &Units,
                       const std::vector<PathSpec> &Paths,
                       const std::vector<FeLane> &Lanes) {
  std::string L = "v1 funcs=";
  bool First = true;
  for (ElemFunc F : effectiveFuncs(C)) {
    if (!First)
      L += ',';
    L += elemFuncName(F);
    First = false;
  }
  L += " schemes=";
  First = true;
  for (EvalScheme S : effectiveSchemes(C)) {
    if (!First)
      L += ',';
    L += evalSchemeName(S);
    First = false;
  }
  L += " bits=" + std::to_string(C.MinBits) + ".." + std::to_string(C.MaxBits);
  L += " exhaustive=" + std::to_string(C.ExhaustiveBits);
  L += " stride=" + std::to_string(C.Stride);
  L += " block=" + std::to_string(C.BlockElems);
  L += " maxrec=" + std::to_string(C.MaxRecordsPerUnit);
  L += " paths=";
  First = true;
  for (const PathSpec &P : Paths) {
    if (!First)
      L += ',';
    L += pathSpecName(P);
    First = false;
  }
  L += " lanes=";
  First = true;
  for (FeLane Lane : Lanes) {
    if (!First)
      L += ',';
    L += feLaneName(Lane);
    First = false;
  }
  L += " units=" + std::to_string(Units.size());
  return L;
}

} // namespace

//===----------------------------------------------------------------------===//
// Planning
//===----------------------------------------------------------------------===//

std::vector<Unit> verify::planUnits(const SweepConfig &C) {
  std::vector<Unit> Units;
  for (ElemFunc F : effectiveFuncs(C))
    for (EvalScheme S : effectiveSchemes(C)) {
      if (!available(F, S))
        continue;
      for (unsigned Bits = C.MinBits; Bits <= C.MaxBits; ++Bits) {
        Unit U;
        U.Func = F;
        U.Scheme = S;
        U.FormatBits = Bits;
        U.Stride = Bits <= C.ExhaustiveBits ? 1 : (C.Stride ? C.Stride : 1);
        uint64_t Space = 1ull << Bits;
        U.NumEncodings = (Space + U.Stride - 1) / U.Stride;
        Units.push_back(U);
      }
    }
  return Units;
}

std::vector<PathSpec> verify::planPaths(const SweepConfig &C) {
  std::vector<PathSpec> Paths;
  Paths.push_back(PathSpec{EvalPath::ScalarCore, libm::BatchISA::Scalar});
  if (C.AllISAs) {
    for (libm::BatchISA ISA : libm::AllBatchISAs)
      Paths.push_back(PathSpec{EvalPath::Batch, ISA});
  } else {
    Paths.push_back(PathSpec{EvalPath::Batch, libm::activeBatchISA()});
  }
  return Paths;
}

std::vector<FeLane> verify::planLanes(const SweepConfig &C) {
  if (!C.FeLanes)
    return {FeLane::Default};
  return {FeLane::Default, FeLane::Upward, FeLane::Downward,
          FeLane::TowardZero};
}

//===----------------------------------------------------------------------===//
// Unit execution
//===----------------------------------------------------------------------===//

UnitResult verify::runUnit(const SweepConfig &C, const Unit &U) {
  static const telemetry::Counter CInputs = telemetry::counter("verify.inputs");
  static const telemetry::Counter CComparisons =
      telemetry::counter("verify.comparisons");
  static const telemetry::Counter CMismatches =
      telemetry::counter("verify.mismatches");
  static const telemetry::Counter COracleFast =
      telemetry::counter("verify.oracle.fast");
  static const telemetry::Counter COracleExact =
      telemetry::counter("verify.oracle.exact");
  static const telemetry::Counter CUnits = telemetry::counter("verify.units");
  static const telemetry::Histogram HUnitMs =
      telemetry::histogram("verify.unit_ms");

  const std::vector<PathSpec> Paths = planPaths(C);
  const std::vector<FeLane> Lanes = planLanes(C);
  const FPFormat Fmt = FPFormat::withBits(U.FormatBits);
  const FPFormat F34 = FPFormat::fp34();
  const unsigned MaxRecords = C.MaxRecordsPerUnit;
  const size_t BlockElems = C.BlockElems ? C.BlockElems : 4096;

  auto Chunk = [&](size_t Begin, size_t End) -> UnitResult {
    const size_t N = End - Begin;
    UnitResult R;
    R.Inputs = N;

    // 1. Inputs and the oracle (default FP environment).
    std::vector<float> In(N);
    std::vector<uint32_t> XB(N);
    for (size_t I = 0; I < N; ++I) {
      uint64_t Enc = (Begin + I) * U.Stride;
      float X = static_cast<float>(Fmt.decode(Enc));
      In[I] = X;
      std::memcpy(&XB[I], &X, 4);
    }
    std::vector<uint64_t> RO(N);
    std::vector<uint8_t> St(N);
    oracle_fast::evalToOdd34Batch(U.Func, XB.data(), N, RO.data(), St.data());
    for (size_t I = 0; I < N; ++I) {
      if (St[I]) {
        ++R.OracleFast;
      } else {
        RO[I] = oracle_cache::evalToOdd34(U.Func, XB[I], /*AllowFast=*/false);
        ++R.OracleExact;
      }
    }

    // 2. Wanted encodings for the five modes.
    std::vector<uint64_t> Want(N * 5);
    for (size_t I = 0; I < N; ++I) {
      double V34 = F34.decode(RO[I]);
      for (unsigned M = 0; M < 5; ++M)
        Want[I * 5 + M] = Fmt.roundDouble(V34, StandardRoundingModes[M]);
    }

    auto evalCombo = [&](const PathSpec &P, FeLane L, double *Out) {
      int FeMode = feLaneMode(L);
      int Saved = 0;
      if (FeMode >= 0) {
        Saved = std::fegetround();
        std::fesetround(FeMode);
      }
      if (P.Path == EvalPath::ScalarCore) {
        for (size_t I = 0; I < N; ++I)
          Out[I] = evalH(U.Func, U.Scheme, In[I]);
      } else {
        evalBatchH(P.ISA, U.Func, U.Scheme, In.data(), Out, N);
      }
      if (FeMode >= 0)
        std::fesetround(Saved);
      if (C.HMutator)
        for (size_t I = 0; I < N; ++I)
          Out[I] = C.HMutator(U.Func, U.Scheme, U.FormatBits, XB[I], Out[I]);
    };
    auto record = [&](size_t I, uint64_t Got, unsigned ModeIdx,
                      const PathSpec &P, FeLane L) {
      ++R.Mismatches;
      if (R.Records.size() >= MaxRecords)
        return;
      Mismatch M;
      M.XBits = XB[I];
      M.GotEnc = Got;
      M.WantEnc = Want[I * 5 + ModeIdx];
      M.Func = static_cast<uint8_t>(U.Func);
      M.Scheme = static_cast<uint8_t>(U.Scheme);
      M.FormatBits = static_cast<uint8_t>(U.FormatBits);
      M.Mode = static_cast<uint8_t>(ModeIdx);
      M.Path = static_cast<uint8_t>(P.Path);
      M.ISA = static_cast<uint8_t>(P.ISA);
      M.Lane = static_cast<uint8_t>(L);
      R.Records.push_back(M);
    };

    // 3. Base combination: full five-mode comparison per input.
    std::vector<double> BaseH(N), H(N);
    std::vector<uint8_t> BaseBad(N, 0);
    evalCombo(Paths[0], Lanes[0], BaseH.data());
    for (size_t I = 0; I < N; ++I) {
      for (unsigned M = 0; M < 5; ++M) {
        uint64_t Got = Fmt.roundDouble(BaseH[I], StandardRoundingModes[M]);
        ++R.Comparisons;
        if (Got != Want[I * 5 + M]) {
          ++BaseBad[I];
          record(I, Got, M, Paths[0], Lanes[0]);
        }
      }
    }
    // 4. Every other (path, lane): bit-compare against the base H.
    for (size_t PI = 0; PI < Paths.size(); ++PI)
      for (size_t LI = 0; LI < Lanes.size(); ++LI) {
        if (PI == 0 && LI == 0)
          continue;
        evalCombo(Paths[PI], Lanes[LI], H.data());
        for (size_t I = 0; I < N; ++I) {
          uint64_t HB, BB;
          std::memcpy(&HB, &H[I], 8);
          std::memcpy(&BB, &BaseH[I], 8);
          if (HB == BB) {
            // Identical H inherits the base verdict for all five modes.
            R.Comparisons += 5;
            R.Mismatches += BaseBad[I];
            continue;
          }
          for (unsigned M = 0; M < 5; ++M) {
            uint64_t Got = Fmt.roundDouble(H[I], StandardRoundingModes[M]);
            ++R.Comparisons;
            if (Got != Want[I * 5 + M])
              record(I, Got, M, Paths[PI], Lanes[LI]);
          }
        }
      }
    return R;
  };

  auto Merge = [MaxRecords](UnitResult A, UnitResult B) {
    A.Inputs += B.Inputs;
    A.Comparisons += B.Comparisons;
    A.Mismatches += B.Mismatches;
    A.OracleFast += B.OracleFast;
    A.OracleExact += B.OracleExact;
    for (const Mismatch &M : B.Records) {
      if (A.Records.size() >= MaxRecords)
        break;
      A.Records.push_back(M);
    }
    return A;
  };

  auto T0 = std::chrono::steady_clock::now();
  UnitResult R = parallelReduce<UnitResult>(
      static_cast<size_t>(U.NumEncodings), UnitResult{}, Chunk, Merge,
      C.Threads, BlockElems);
  R.Millis = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();

  CInputs.add(R.Inputs);
  CComparisons.add(R.Comparisons);
  CMismatches.add(R.Mismatches);
  COracleFast.add(R.OracleFast);
  COracleExact.add(R.OracleExact);
  CUnits.inc();
  HUnitMs.record(R.Millis);
  return R;
}

//===----------------------------------------------------------------------===//
// Whole sweeps
//===----------------------------------------------------------------------===//

void SweepReport::accumulate() {
  Inputs = Comparisons = Mismatches = OracleFast = OracleExact = 0;
  UnitsResumed = 0;
  Millis = 0.0;
  for (const UnitOutcome &O : Units) {
    Inputs += O.R.Inputs;
    Comparisons += O.R.Comparisons;
    Mismatches += O.R.Mismatches;
    OracleFast += O.R.OracleFast;
    OracleExact += O.R.OracleExact;
    Millis += O.R.Millis;
    if (O.Resumed)
      ++UnitsResumed;
  }
}

SweepReport verify::runSweep(const SweepConfig &C) {
  SweepReport Report;
  Report.Paths = planPaths(C);
  Report.Lanes = planLanes(C);
  for (const Unit &U : planUnits(C))
    Report.Units.push_back(UnitOutcome{U, runUnit(C, U), false});
  Report.accumulate();
  return Report;
}

bool verify::runShard(const SweepConfig &C, const ShardOptions &Opts,
                      unsigned K, std::vector<UnitOutcome> &Out,
                      std::string *Err) {
  static const telemetry::Counter CResumed =
      telemetry::counter("verify.units_resumed");

  if (Opts.Dir.empty())
    return fail(Err, "shard directory not set");
  if (Opts.NumShards == 0 || K >= Opts.NumShards)
    return fail(Err, "shard index " + std::to_string(K) + " out of range (" +
                         std::to_string(Opts.NumShards) + " shards)");

  const std::vector<Unit> Units = planUnits(C);
  const std::vector<PathSpec> Paths = planPaths(C);
  const std::vector<FeLane> Lanes = planLanes(C);
  const std::string Line = configLine(C, Units, Paths, Lanes);
  store::StoreConfig SC;
  SC.ConfigHash = store::hashConfigLine(Line);
  SC.NumShards = Opts.NumShards;
  SC.NumUnits = Units.size();
  if (!store::writeOrCheckManifest(Opts.Dir, Line, SC, Err))
    return false;

  uint64_t Begin, End;
  store::shardUnitRange(SC, K, Begin, End);

  if (Opts.Resume && store::shardValid(Opts.Dir, SC, K)) {
    if (!store::readShard(Opts.Dir, SC, K, Out, Err))
      return false;
    CResumed.add(Out.size());
    return true;
  }

  Out.clear();
  for (uint64_t I = Begin; I < End; ++I)
    Out.push_back(UnitOutcome{Units[I], runUnit(C, Units[I]), false});
  return store::writeShard(Opts.Dir, SC, K, Out, Err);
}

bool verify::runShardedSweep(const SweepConfig &C, const ShardOptions &Opts,
                             SweepReport &Report, std::string *Err) {
  Report = SweepReport();
  Report.Paths = planPaths(C);
  Report.Lanes = planLanes(C);
  for (unsigned K = 0; K < Opts.NumShards; ++K) {
    std::vector<UnitOutcome> Out;
    if (!runShard(C, Opts, K, Out, Err))
      return false;
    for (UnitOutcome &O : Out)
      Report.Units.push_back(std::move(O));
  }
  Report.accumulate();
  return true;
}
