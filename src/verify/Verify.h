//===- verify/Verify.h - Exhaustive multi-format verification --*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correctness moat: a sharded, thread-pooled sweep engine that checks
/// the shipped results bit-for-bit against the certified oracle over the
/// full claim of the paper -- every input of every FP(k, 8) format from 10
/// to 32 bits, under all five IEEE rounding modes, for all six functions,
/// through both evaluation paths (the scalar cores and the SIMD batch
/// kernels per compiled ISA), and optionally under a *changed dynamic FP
/// rounding mode* (RLibm-MultiRound's scenario, the `fesetround` lanes).
///
/// The work decomposes into **units**: one (function, scheme, format)
/// triple. A unit enumerates its format's encodings (exhaustively for
/// narrow formats, strided for wide ones), decodes each to the float
/// input, obtains RO_34(f(x)) once per input from the certified fast-path
/// oracle (exact-oracle fallback, both memoized), and then checks, for
/// every (path, lane, mode) in the sweep matrix, that
///
///     roundDouble(H(x), fmt, mode) == roundDouble(RO_34, fmt, mode)
///
/// The base path does the five rounded comparisons per input; every other
/// (path, lane) first bit-compares its H against the base H -- identical
/// bits prove the five comparisons transitively, so verifying four extra
/// ISA/lane combinations costs little more than their evaluations. Only
/// when an H diverges (a kernel parity bug, a mode leak) does the engine
/// fall back to the full per-mode comparison and record what actually
/// misrounds.
///
/// Units run blocks through ThreadPool::parallelReduce with a fixed
/// partition, so counts, mismatch records and their order are bit-
/// identical for every thread count. Sharded runs persist per-unit
/// results with checksummed, atomically renamed files (verify/
/// VerifyStore.h, the ShardStore recipe) so `verify --shard K/M --resume`
/// skips shards that already completed -- a killed run loses at most its
/// in-flight shard.
///
/// Telemetry: verify.inputs, verify.comparisons, verify.mismatches,
/// verify.units, verify.units_resumed, verify.oracle.fast,
/// verify.oracle.exact counters and the verify.unit_ms histogram.
///
//===----------------------------------------------------------------------===//

#ifndef RFP_VERIFY_VERIFY_H
#define RFP_VERIFY_VERIFY_H

#include "libm/rfp.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rfp {
namespace verify {

//===----------------------------------------------------------------------===//
// The sweep matrix.
//===----------------------------------------------------------------------===//

/// Which implementation produced the H under test.
enum class EvalPath : uint8_t {
  ScalarCore, ///< per-call cores via rfp::evalH
  Batch,      ///< batch kernels via rfp::evalBatchH with a pinned ISA
};

/// One evaluation path: the scalar cores, or the batch entry with a
/// specific kernel ISA (which itself falls back to the scalar loop when
/// the ISA is not compiled in / not supported, per the Batch.h contract).
struct PathSpec {
  EvalPath Path = EvalPath::ScalarCore;
  libm::BatchISA ISA = libm::BatchISA::Scalar;

  bool operator==(const PathSpec &RHS) const {
    return Path == RHS.Path && (Path == EvalPath::ScalarCore ||
                                ISA == RHS.ISA);
  }
};

/// "scalar-core", "batch-avx512", ...
std::string pathSpecName(const PathSpec &P);

/// Dynamic FP environments the sweep pins around the eval calls -- the
/// MultiRound lanes. Default leaves the ambient mode alone; the others
/// fesetround before evaluating and restore afterwards. The shipped
/// results must not move (rfp.h's MultiRound contract).
enum class FeLane : uint8_t { Default, Upward, Downward, TowardZero };

/// "default", "fe-upward", "fe-downward", "fe-towardzero".
const char *feLaneName(FeLane L);

/// The <cfenv> FE_* constant for a lane (-1 for Default).
int feLaneMode(FeLane L);

//===----------------------------------------------------------------------===//
// Configuration and planning.
//===----------------------------------------------------------------------===//

struct SweepConfig {
  /// Functions to sweep; empty = all six.
  std::vector<ElemFunc> Funcs;
  /// Schemes to sweep; empty = all four. Unavailable (func, scheme)
  /// combinations are skipped either way.
  std::vector<EvalScheme> Schemes;
  /// Format family: FP(k, 8) for MinBits <= k <= MaxBits.
  unsigned MinBits = 10;
  unsigned MaxBits = 32;
  /// Formats with totalBits <= ExhaustiveBits enumerate every encoding;
  /// wider formats stride their encoding space by Stride.
  unsigned ExhaustiveBits = 16;
  /// Encoding stride for the non-exhaustive formats. Odd values hit
  /// varied mantissa/exponent patterns; 1 makes everything exhaustive.
  uint64_t Stride = 65537;
  /// Verify the batch path on every compiled ISA instead of only the
  /// process's active one.
  bool AllISAs = false;
  /// Add the MultiRound fesetround lanes to the matrix.
  bool FeLanes = false;
  /// Worker threads (ThreadPool::resolveThreads semantics; 0 = default).
  unsigned Threads = 0;
  /// Inputs per work block (also the deterministic chunk size).
  size_t BlockElems = 4096;
  /// Cap on mismatch records kept per unit (counts are always exact).
  unsigned MaxRecordsPerUnit = 64;
  /// Test seam: post-eval H mutation, applied identically to every path
  /// and lane (mismatch-injection tests). Null in production.
  std::function<double(ElemFunc F, EvalScheme S, unsigned FormatBits,
                       uint32_t XBits, double H)>
      HMutator;
};

/// One (function, scheme, format) work unit of the sweep.
struct Unit {
  ElemFunc Func = ElemFunc::Exp;
  EvalScheme Scheme = EvalScheme::EstrinFMA;
  unsigned FormatBits = 32;
  /// Encoding stride for this unit (1 = exhaustive).
  uint64_t Stride = 1;
  /// Number of encodings the unit enumerates (ceil(2^bits / Stride)).
  uint64_t NumEncodings = 0;
};

/// The deterministic unit list for a configuration, in (func, scheme,
/// bits) order. Unavailable variants are omitted.
std::vector<Unit> planUnits(const SweepConfig &C);

/// The evaluation paths for a configuration: the scalar cores plus the
/// batch path on the active ISA (AllISAs: on every compiled ISA).
std::vector<PathSpec> planPaths(const SweepConfig &C);

/// The FE lanes for a configuration: {Default}, or all four with FeLanes.
std::vector<FeLane> planLanes(const SweepConfig &C);

//===----------------------------------------------------------------------===//
// Results.
//===----------------------------------------------------------------------===//

/// One recorded wrong result: what was asked, what the implementation
/// rounded to, and what the oracle requires. Serialized in shard files as
/// 32 packed bytes.
struct Mismatch {
  uint32_t XBits = 0;   ///< float32 bit pattern of the input
  uint64_t GotEnc = 0;  ///< implementation result, encoding of the format
  uint64_t WantEnc = 0; ///< oracle result, encoding of the format
  uint8_t Func = 0;     ///< ElemFunc index
  uint8_t Scheme = 0;   ///< EvalScheme index
  uint8_t FormatBits = 0;
  uint8_t Mode = 0;     ///< RoundingMode index (standard modes)
  uint8_t Path = 0;     ///< EvalPath index
  uint8_t ISA = 0;      ///< BatchISA index (Batch path only)
  uint8_t Lane = 0;     ///< FeLane index

  bool operator==(const Mismatch &RHS) const {
    return XBits == RHS.XBits && GotEnc == RHS.GotEnc &&
           WantEnc == RHS.WantEnc && Func == RHS.Func &&
           Scheme == RHS.Scheme && FormatBits == RHS.FormatBits &&
           Mode == RHS.Mode && Path == RHS.Path && ISA == RHS.ISA &&
           Lane == RHS.Lane;
  }
};

/// Aggregated outcome of one unit.
struct UnitResult {
  uint64_t Inputs = 0;      ///< encodings evaluated (independent of paths)
  uint64_t Comparisons = 0; ///< logical (mode x path x lane) comparisons
  uint64_t Mismatches = 0;  ///< total wrong results (exact, never capped)
  uint64_t OracleFast = 0;  ///< inputs decided by the certified fast path
  uint64_t OracleExact = 0; ///< inputs that needed the exact oracle
  double Millis = 0.0;      ///< wall-clock of the unit sweep
  std::vector<Mismatch> Records; ///< first MaxRecordsPerUnit mismatches
};

/// Runs one unit in-process (parallel over blocks, deterministic for any
/// thread count).
UnitResult runUnit(const SweepConfig &C, const Unit &U);

struct UnitOutcome {
  Unit U;
  UnitResult R;
  bool Resumed = false; ///< loaded from a valid shard instead of recomputed
};

/// Whole-sweep report: per-unit outcomes plus totals.
struct SweepReport {
  std::vector<UnitOutcome> Units;
  std::vector<PathSpec> Paths;
  std::vector<FeLane> Lanes;
  uint64_t Inputs = 0;
  uint64_t Comparisons = 0;
  uint64_t Mismatches = 0;
  uint64_t OracleFast = 0;
  uint64_t OracleExact = 0;
  unsigned UnitsResumed = 0;
  double Millis = 0.0; ///< sum of unit wall-clocks

  /// Recomputes the totals from Units.
  void accumulate();
};

/// Runs every unit of the plan in-process (no persistence).
SweepReport runSweep(const SweepConfig &C);

//===----------------------------------------------------------------------===//
// Sharded / resumable runs.
//===----------------------------------------------------------------------===//

struct ShardOptions {
  std::string Dir;        ///< shard directory (required)
  unsigned NumShards = 1; ///< total shards M
  bool Resume = false;    ///< load shards that already completed
};

/// Computes (or, with Resume, loads) shard \p K of \p Opts.NumShards: the
/// K-th contiguous slice of the unit list (ceil split, the ShardStore
/// convention). On success \p Out holds exactly that shard's outcomes and
/// the shard file is on disk, checksummed and atomically renamed.
bool runShard(const SweepConfig &C, const ShardOptions &Opts, unsigned K,
              std::vector<UnitOutcome> &Out, std::string *Err = nullptr);

/// Runs all shards in order (each persisted as it completes, each loaded
/// instead when Resume finds it valid) and assembles the full report --
/// counts, records and their order identical to runSweep over the same
/// configuration (wall-clock fields are whatever the computing run saw).
bool runShardedSweep(const SweepConfig &C, const ShardOptions &Opts,
                     SweepReport &Report, std::string *Err = nullptr);

} // namespace verify
} // namespace rfp

#endif // RFP_VERIFY_VERIFY_H
