//===- verify/VerifyStore.h - Resumable verification shards ----*- C++ -*-===//
//
// Part of the rlibm-fastpoly project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk persistence for sharded verification sweeps, following the
/// core/ShardStore.h recipe: the sweep's unit list splits into NumShards
/// contiguous ranges, and each shard persists its units' results --
/// counters plus the capped mismatch records -- so `verify --shard K/M
/// --resume` recomputes only shards that are missing or fail validation.
///
/// Layout under a shard directory (one set per sweep configuration):
///   verify.manifest            -- text: the canonical config line + split
///   verify.shard<K>of<M>.bin   -- binary: header, per-unit blocks, FNV-1a
///                                 checksum over the block bytes
///
/// The manifest pins the *whole* sweep identity -- functions, schemes,
/// format range, strides, evaluation paths (including the kernel ISA
/// list, which is machine-dependent) and FE lanes -- as one canonical
/// line; shard headers carry its FNV-1a hash. Readers reject any
/// mismatch rather than silently assembling results from two different
/// sweeps (or two different machines).
///
/// Files are written to a temporary name and renamed into place, so a
/// killed run leaves either a complete, checksummed shard or junk that
/// validation rejects -- never a truncated file under the final name.
/// Multi-byte fields are native-endian: shard sets are machine-local
/// working state, not interchange files.
///
//===----------------------------------------------------------------------===//

#ifndef RFP_VERIFY_VERIFYSTORE_H
#define RFP_VERIFY_VERIFYSTORE_H

#include "verify/Verify.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rfp {
namespace verify {
namespace store {

/// Identity of a verification shard set: the hash of the canonical config
/// line (see Verify.cpp's configLine) plus the unit-list split. Every
/// shard header carries it; readers reject mismatches.
struct StoreConfig {
  uint64_t ConfigHash = 0;
  uint32_t NumShards = 0;
  uint64_t NumUnits = 0;

  bool operator==(const StoreConfig &RHS) const {
    return ConfigHash == RHS.ConfigHash && NumShards == RHS.NumShards &&
           NumUnits == RHS.NumUnits;
  }
};

/// FNV-1a over the canonical config line (the hash shard headers pin).
uint64_t hashConfigLine(const std::string &Line);

std::string manifestPath(const std::string &Dir);
std::string shardPath(const std::string &Dir, unsigned K, unsigned M);

/// Creates \p Dir if needed and writes the manifest atomically. When a
/// manifest already exists it is validated instead: a different config
/// line or split is an error (the directory belongs to a different run).
bool writeOrCheckManifest(const std::string &Dir, const std::string &ConfigLine,
                          const StoreConfig &C, std::string *Err = nullptr);

/// Unit-index range [Begin, End) covered by shard \p K: the unit list
/// splits into NumShards near-equal contiguous ranges (ceil division, so
/// trailing shards of a ragged split may be empty but never overlap).
void shardUnitRange(const StoreConfig &C, unsigned K, uint64_t &Begin,
                    uint64_t &End);

/// Writes shard \p K (the outcomes of its unit range, in unit order) as a
/// checksummed file, temporary-then-rename.
bool writeShard(const std::string &Dir, const StoreConfig &C, unsigned K,
                const std::vector<UnitOutcome> &Units,
                std::string *Err = nullptr);

/// Reads shard \p K back. \p Out receives exactly the shard's unit
/// outcomes in unit order; the checksum and header are validated.
bool readShard(const std::string &Dir, const StoreConfig &C, unsigned K,
               std::vector<UnitOutcome> &Out, std::string *Err = nullptr);

/// True when shard \p K exists under \p Dir, matches \p C, and its
/// checksum verifies. This is the resume predicate: invalid or missing
/// shards are recomputed.
bool shardValid(const std::string &Dir, const StoreConfig &C, unsigned K);

} // namespace store
} // namespace verify
} // namespace rfp

#endif // RFP_VERIFY_VERIFYSTORE_H
